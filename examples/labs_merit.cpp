// LABS with high-depth QAOA: the paper's flagship application (Listing 3
// semantics; the science is in its Ref. [6]).
//
// LABS phases oscillate fast (cost range ~n^2), so raw linear ramps do
// little; the workflow that works -- and the one the simulator is built to
// make cheap -- is optimizing the schedule at each depth and climbing p
// with the INTERP ladder. One ProblemSession serves the whole ladder:
// optimization populations and the per-depth overlap queries all reuse
// its precomputed diagonal. This example reports the optimized energy,
// the merit factor implied by it, and the probability of measuring an
// optimal sequence, per depth.
#include <cstdio>

#include "api/qokit.hpp"

int main() {
  using namespace qokit;

  const int n = 14;
  const api::ProblemSession session = api::ProblemSession::labs(n);
  const CostDiagonal& diag = session.cost_diagonal();
  const double e_min = diag.min_value();
  const double uniform =
      static_cast<double>(diag.ground_state_count()) / diag.size();

  std::printf("LABS n = %d: |T| = %zu terms, optimal E = %.0f (known: %d), "
              "degenerate optima: %llu\n",
              n, session.terms().size(), e_min, labs_known_optimum(n),
              static_cast<unsigned long long>(diag.ground_state_count()));
  std::printf("merit factor of the optimum: %.4f\n", n * n / (2.0 * e_min));
  std::printf("%4s %12s %12s %14s %8s\n", "p", "<E>", "merit F",
              "P(optimal)", "evals");
  std::printf("%4d %12.4f %12.4f %14.3e %8s   (uniform superposition)\n", 0,
              session.terms().offset(),
              n * n / (2.0 * session.terms().offset()), uniform, "-");

  QaoaParams params = linear_ramp(1, 0.9);
  for (double& g : params.gammas) g *= 0.1;  // gamma ~ 1 / range(C)
  api::EvalRequest overlap_query;
  overlap_query.expectation = false;
  overlap_query.overlap = true;
  int total_evals = 0;
  for (int p = 1; p <= 6; ++p) {
    api::OptimizerSpec optimizer;
    optimizer.p = p;
    optimizer.initial = params;
    optimizer.nelder_mead = {.max_evals = 300};
    const api::EvalResult r = session.optimize(optimizer);
    total_evals += *r.evaluations;
    const api::EvalResult at_best = session.evaluate(*r.params, overlap_query);
    std::printf("%4d %12.4f %12.4f %14.3e %8d\n", p, *r.expectation,
                n * n / (2.0 * *r.expectation), *at_best.overlap,
                *r.evaluations);
    params = interp_to_next_depth(*r.params);
  }
  std::printf("total simulator evaluations: %d (why fast objective "
              "evaluation matters)\n",
              total_evals);
  return 0;
}
