// MaxCut parameter optimization: the paper's motivating workflow (Fig. 1).
//
// Optimizes QAOA schedules for a random 3-regular graph, climbing depth
// with the INTERP ladder, and reports the approximation ratio achieved at
// each depth against the brute-force optimum. Demonstrates why repeated
// objective evaluation must be cheap: a single run below spends hundreds
// of simulator calls.
#include <cstdio>

#include "api/qokit.hpp"

int main() {
  using namespace qokit;

  const int n = 14;
  const Graph g = Graph::random_regular(n, 3, /*seed=*/2023);
  const TermList terms = maxcut_terms(g);
  const double best_cut = maxcut_brute_force(g);
  std::printf("random 3-regular graph: n = %d, |E| = %zu, maxcut = %.0f\n", n,
              g.num_edges(), best_cut);

  const auto sim = choose_simulator(terms);
  QaoaParams params = linear_ramp(1, 0.8);
  int total_evals = 0;

  std::printf("%4s %14s %12s %8s\n", "p", "<cut>", "ratio", "evals");
  for (int p = 1; p <= 5; ++p) {
    QaoaObjective objective(*sim, p);
    const OptResult r = nelder_mead(
        [&objective](const std::vector<double>& x) { return objective(x); },
        params.flatten(), {.max_evals = 400});
    total_evals += objective.evaluations();
    const double expected_cut = -r.fval;
    std::printf("%4d %14.6f %12.4f %8d\n", p, expected_cut,
                expected_cut / best_cut, objective.evaluations());
    params = interp_to_next_depth(QaoaParams::unflatten(r.x));
  }
  std::printf("total simulator evaluations: %d\n", total_evals);
  return 0;
}
