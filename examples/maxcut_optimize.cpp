// MaxCut parameter optimization: the paper's motivating workflow (Fig. 1).
//
// Optimizes QAOA schedules for a random 3-regular graph, climbing depth
// with the INTERP ladder, and reports the approximation ratio achieved at
// each depth against the brute-force optimum. One ProblemSession carries
// the whole ladder: the cost diagonal is precomputed once and every one
// of the hundreds of objective evaluations below reuses it.
#include <cstdio>

#include "api/qokit.hpp"

int main() {
  using namespace qokit;

  const int n = 14;
  const Graph g = Graph::random_regular(n, 3, /*seed=*/2023);
  const double best_cut = maxcut_brute_force(g);
  std::printf("random 3-regular graph: n = %d, |E| = %zu, maxcut = %.0f\n", n,
              g.num_edges(), best_cut);

  const api::ProblemSession session = api::ProblemSession::maxcut(g);
  QaoaParams params = linear_ramp(1, 0.8);
  int total_evals = 0;

  std::printf("%4s %14s %12s %8s\n", "p", "<cut>", "ratio", "evals");
  for (int p = 1; p <= 5; ++p) {
    api::OptimizerSpec optimizer;
    optimizer.p = p;
    optimizer.initial = params;
    optimizer.nelder_mead = {.max_evals = 400};
    const api::EvalResult r = session.optimize(optimizer);
    total_evals += *r.evaluations;
    const double expected_cut = -*r.expectation;
    std::printf("%4d %14.6f %12.4f %8d\n", p, expected_cut,
                expected_cut / best_cut, *r.evaluations);
    params = interp_to_next_depth(*r.params);
  }
  std::printf("total simulator evaluations: %d (one diagonal precompute)\n",
              total_evals);
  return 0;
}
