// Schedule-server quick start.
//
// Default mode (what ctest runs): start a ScheduleServer on a local
// AF_UNIX socket, answer the same (problem, schedule-batch) request twice
// through the in-process submit() path and twice through the binary
// socket protocol, and print what the session cache amortized away -- the
// first request pays the diagonal precompute, every later one is a cache
// hit that only pays the (cheap, high-depth-friendly) layer evolution.
//
//   ./serve_quickstart --listen /tmp/qokit.sock
//
// runs the same server as a long-lived process instead (stop with
// Ctrl-C); any client speaking serve/protocol.hpp framing can connect,
// e.g. serve::Client or the bench/bench_serve_load.cpp driver.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include "api/qokit.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace qokit;

  const bool listen_mode = argc > 2 && std::strcmp(argv[1], "--listen") == 0;
  serve::ServerConfig config;
  config.workers = 2;
  config.listen_path = listen_mode ? argv[2] : "serve_quickstart.sock";
  serve::ScheduleServer server(config);

  if (listen_mode) {
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::printf("serving on %s (Ctrl-C to stop)\n",
                config.listen_path.c_str());
    while (!g_stop)
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server.shutdown();
    std::printf("stopped.\n");
    return 0;
  }

  // One MaxCut problem, a small batch of schedules -- the request shape a
  // parameter-optimization client would send each step.
  serve::Request request;
  request.terms = maxcut_terms(Graph::random_regular(12, 3, 42));
  request.schedules = {linear_ramp(4, 0.6), linear_ramp(4, 0.8),
                       linear_ramp(4, 1.0)};

  std::printf("%-28s %-9s %12s %12s\n", "path", "cache", "eval (us)",
              "<C> of s0");
  const auto show = [](const char* path, const serve::Response& r) {
    std::printf("%-28s %-9s %12.1f %12.6f\n", path,
                r.cache_hit ? "hit" : "miss",
                static_cast<double>(r.eval_ns) * 1e-3,
                r.expectations.empty() ? 0.0 : r.expectations.front());
  };

  // In-process path: submit() returns a std::future<Response>.
  show("submit()", server.submit_blocking(request));
  show("submit()", server.submit_blocking(request));

  // Socket path: same frames a remote client would send.
  serve::Client client(config.listen_path);
  show("socket client", client.call(request));
  show("socket client", client.call(request));

  const serve::SessionCache::Stats stats = server.cache_stats();
  std::printf(
      "cache: %llu hit(s), %llu miss(es), %llu session(s) resident "
      "(~%.1f MiB)\n",
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.sessions),
      static_cast<double>(stats.bytes) / (1024.0 * 1024.0));
  server.shutdown();
  return stats.hits == 3 && stats.misses == 1 ? 0 : 1;
}
