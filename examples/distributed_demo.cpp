// Distributed simulation demo (paper Sec. III-C, Algorithm 4).
//
// Runs the same LABS QAOA over 1..8 virtual ranks with both alltoall
// transports -- each configuration a ProblemSession built from the typed
// spec the "dist:K:strategy" spelling parses into -- verifies every
// configuration agrees with the single-node simulator bit-for-bit (to fp
// tolerance), and prints per-layer timings from the session's Timings
// block.
#include <cstdio>

#include "api/qokit.hpp"

int main() {
  using namespace qokit;

  const int n = 18;
  const TermList terms = labs_terms(n);
  const QaoaParams params = linear_ramp(2, 0.9);

  const api::ProblemSession single(terms, SimulatorSpec::parse("threaded"));
  const StateVector reference = single.simulate(params);
  const double e_ref = single.simulator().get_expectation(reference);
  std::printf("single-node reference: n = %d, p = %d, <E> = %.6f\n", n,
              params.p(), e_ref);

  std::printf("%22s %14s %14s %12s\n", "spec", "<E>", "max|diff|",
              "time (s)");
  for (int k : {1, 2, 4, 8}) {
    for (const char* strategy : {"staged", "pairwise"}) {
      char name[48];
      std::snprintf(name, sizeof name, "dist:%d:%s", k, strategy);
      const api::ProblemSession session(terms, SimulatorSpec::parse(name));
      // One evolution per configuration: keep the state for the
      // cross-check and score it through the session's simulator.
      WallTimer timer;
      const StateVector state = session.simulate(params);
      const double secs = timer.seconds();
      std::printf("%22s %14.6f %14.3e %12.4f\n",
                  session.spec().to_string().c_str(),
                  session.simulator().get_expectation(state),
                  state.max_abs_diff(reference), secs);
    }
  }
  std::printf("all configurations must agree to ~1e-12.\n");
  return 0;
}
