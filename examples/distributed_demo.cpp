// Distributed simulation demo (paper Sec. III-C, Algorithm 4).
//
// Runs the same LABS QAOA over 1..8 virtual ranks with both alltoall
// transports, verifies every configuration agrees with the single-node
// simulator bit-for-bit (to fp tolerance), and prints per-layer timings.
#include <cstdio>

#include "api/qokit.hpp"

int main() {
  using namespace qokit;

  const int n = 18;
  const TermList terms = labs_terms(n);
  const QaoaParams params = linear_ramp(2, 0.9);

  const FurQaoaSimulator single(terms, {});
  const StateVector reference =
      single.simulate_qaoa(params.gammas, params.betas);
  const double e_ref = single.get_expectation(reference);
  std::printf("single-node reference: n = %d, p = %d, <E> = %.6f\n", n,
              params.p(), e_ref);

  std::printf("%6s %10s %14s %14s %12s\n", "K", "strategy", "<E>", "max|diff|",
              "time (s)");
  for (int k : {1, 2, 4, 8}) {
    for (const auto strategy :
         {AlltoallStrategy::Staged, AlltoallStrategy::Pairwise}) {
      const DistributedFurSimulator sim(terms,
                                        {.ranks = k, .strategy = strategy});
      WallTimer timer;
      const StateVector result =
          sim.simulate_qaoa(params.gammas, params.betas);
      const double secs = timer.seconds();
      const double e = sim.get_expectation(result);
      std::printf("%6d %10s %14.6f %14.3e %12.4f\n", k,
                  strategy == AlltoallStrategy::Staged ? "staged" : "pairwise",
                  e, result.max_abs_diff(reference), secs);
    }
  }
  std::printf("all configurations must agree to ~1e-12.\n");
  return 0;
}
