// Quickstart: the C++ equivalent of Listing 1 in the paper.
//
// Build the weighted all-to-all MaxCut terms, choose a simulator, read the
// precomputed cost diagonal, run QAOA, and evaluate the objective.
#include <cstdio>

#include "api/qokit.hpp"

int main() {
  using namespace qokit;

  const int n = 16;  // number of qubits
  // Terms for all-to-all MaxCut with weight 0.3 (Listing 1, line 5).
  const Graph g = Graph::complete(n, 0.3);
  const TermList terms = maxcut_terms(g);

  // simclass = qokit.fur.choose_simulator(name='auto')
  const auto sim = choose_simulator(terms, "auto");

  // costs = sim.get_cost_diagonal()
  const CostDiagonal& costs = sim->get_cost_diagonal();
  std::printf("n = %d, |T| = %zu terms\n", n, terms.size());
  std::printf("cost diagonal: 2^%d entries, min %.3f, max %.3f\n",
              costs.num_qubits(), costs.min_value(), costs.max_value());

  // result = sim.simulate_qaoa(gamma, beta)
  const QaoaParams params = linear_ramp(/*p=*/3, /*dt=*/0.8);
  const StateVector result = sim->simulate_qaoa(params.gammas, params.betas);

  // E = sim.get_expectation(result)
  const double e = sim->get_expectation(result);
  std::printf("QAOA objective <C> = %.6f (expected cut %.6f)\n", e, -e);
  std::printf("ground-state overlap = %.6f\n", sim->get_overlap(result));
  return 0;
}
