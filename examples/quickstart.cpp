// Quickstart: the session-based C++ equivalent of Listing 1 in the paper.
//
// Build the weighted all-to-all MaxCut terms, open a ProblemSession (one
// diagonal precompute), and answer queries through the unified
// EvalRequest/EvalResult surface.
#include <cstdio>

#include "api/qokit.hpp"

int main() {
  using namespace qokit;

  const int n = 16;  // number of qubits
  // Terms for all-to-all MaxCut with weight 0.3 (Listing 1, line 5).
  const Graph g = Graph::complete(n, 0.3);

  // The session owns the simulator, the precomputed cost diagonal, and
  // the cached initial state; every later query reuses all three.
  const api::ProblemSession session =
      api::ProblemSession::maxcut(g, SimulatorSpec::parse("auto"));

  const CostDiagonal& costs = session.cost_diagonal();
  std::printf("n = %d, |T| = %zu terms\n", n, session.terms().size());
  std::printf("cost diagonal: 2^%d entries, min %.3f, max %.3f "
              "(precomputed once, %.3f ms)\n",
              costs.num_qubits(), costs.min_value(), costs.max_value(),
              session.precompute_ns() / 1e6);

  // One request selects everything this query needs.
  const QaoaParams params = linear_ramp(/*p=*/3, /*dt=*/0.8);
  api::EvalRequest request;
  request.overlap = true;
  request.timings = true;
  const api::EvalResult r = session.evaluate(params, request);

  std::printf("QAOA objective <C> = %.6f (expected cut %.6f)\n",
              *r.expectation, -*r.expectation);
  std::printf("ground-state overlap = %.6f\n", *r.overlap);
  std::printf("simulate %.3f ms, score %.3f ms (no re-precompute)\n",
              r.timings->simulate_ns / 1e6, r.timings->reduce_ns / 1e6);

  // Repeat queries are cheap: the second evaluation reuses the diagonal,
  // the initial state, and the scratch statevector.
  const api::EvalResult again = session.evaluate(params, request);
  std::printf("second call simulate %.3f ms (identical result: %s)\n",
              again.timings->simulate_ns / 1e6,
              *again.expectation == *r.expectation ? "yes" : "no");

  // With QOKIT_OBS=1 in the environment (or an obs=on spec), write the
  // metrics snapshot (JSON + Prometheus exposition) and the
  // chrome://tracing trace next to the binary. A no-op when off.
  if (obs::dump())
    std::printf("observability exports written (qokit_obs_*.json/.prom)\n");
  return 0;
}
