// Constrained portfolio optimization with the Hamming-weight-preserving
// xy-ring mixer (paper Sec. III-B / Listing 2).
//
// Selecting exactly K of n assets: the state starts in the Dicke state
// |D_n^K> and every mixer application stays inside the budget sector, so
// no penalty terms are needed. Reports the probability of sampling the
// true optimal portfolio after optimization.
#include <cstdio>

#include "api/qokit.hpp"

int main() {
  using namespace qokit;

  const int n = 12, budget = 4;
  const PortfolioInstance inst = random_portfolio(n, budget, 0.6, /*seed=*/7);
  std::uint64_t best_x = 0;
  const double best_value = inst.brute_force_best(&best_x);
  std::printf("portfolio: n = %d assets, budget K = %d, optimum f = %.6f\n", n,
              budget, best_value);

  const TermList terms = portfolio_terms(inst);
  FurQaoaSimulator sim(terms, {.mixer = MixerType::XYRing,
                               .initial_weight = budget});

  const int p = 3;
  QaoaObjective objective(sim, p);
  const OptResult r = nelder_mead(
      [&objective](const std::vector<double>& x) { return objective(x); },
      linear_ramp(p, 0.7).flatten(), {.max_evals = 500});

  const QaoaParams params = QaoaParams::unflatten(r.x);
  const StateVector result = sim.simulate_qaoa(params.gammas, params.betas);

  std::printf("optimized <f> = %.6f after %d evaluations\n", r.fval,
              objective.evaluations());
  std::printf("budget-sector mass = %.9f (must be 1: mixer is HW-preserving)\n",
              result.weight_sector_mass(budget));
  std::printf("P(optimal portfolio) = %.4f  (uniform in-sector: %.4f)\n",
              std::norm(result[best_x]),
              1.0 / 495.0 /* C(12,4) */);
  std::printf("in-sector ground overlap via API: %.4f\n",
              sim.get_overlap(result, budget));
  return 0;
}
