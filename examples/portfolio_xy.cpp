// Constrained portfolio optimization with the Hamming-weight-preserving
// xy-ring mixer (paper Sec. III-B / Listing 2).
//
// Selecting exactly K of n assets: the ProblemSession::portfolio builder
// defaults the spec to the ring-XY mixer started from the Dicke state
// |D_n^K>, so every mixer application stays inside the budget sector and
// no penalty terms are needed. Reports the probability of sampling the
// true optimal portfolio after optimization.
#include <cstdio>

#include "api/qokit.hpp"

int main() {
  using namespace qokit;

  const int n = 12, budget = 4;
  const PortfolioInstance inst = random_portfolio(n, budget, 0.6, /*seed=*/7);
  std::uint64_t best_x = 0;
  const double best_value = inst.brute_force_best(&best_x);
  std::printf("portfolio: n = %d assets, budget K = %d, optimum f = %.6f\n", n,
              budget, best_value);

  // Builder defaults: mixer=xyring, weight=budget (Listing 2 semantics).
  const api::ProblemSession session = api::ProblemSession::portfolio(inst);
  std::printf("session spec: %s\n", session.spec().to_string().c_str());

  api::OptimizerSpec optimizer;
  optimizer.p = 3;
  optimizer.initial = linear_ramp(3, 0.7);
  optimizer.nelder_mead = {.max_evals = 500};
  const api::EvalResult r = session.optimize(optimizer);

  const StateVector result = session.simulate(*r.params);
  api::EvalRequest sector_query;
  sector_query.expectation = false;
  sector_query.overlap = true;
  sector_query.overlap_weight = budget;  // in-sector ground overlap
  const api::EvalResult sector = session.evaluate(*r.params, sector_query);

  std::printf("optimized <f> = %.6f after %d evaluations\n", *r.expectation,
              *r.evaluations);
  std::printf("budget-sector mass = %.9f (must be 1: mixer is HW-preserving)\n",
              result.weight_sector_mass(budget));
  std::printf("P(optimal portfolio) = %.4f  (uniform in-sector: %.4f)\n",
              std::norm(result[best_x]),
              1.0 / 495.0 /* C(12,4) */);
  std::printf("in-sector ground overlap via the session API: %.4f\n",
              *sector.overlap);
  return 0;
}
