// Negative-compile fixture for the thread-safety analysis (see the
// "Static analysis negative checks" section of CMakeLists.txt).
//
// Compiled twice at configure time on clang, with -Wthread-safety
// -Werror both times:
//
//  - without QOKIT_SEED_VIOLATION it MUST compile: the positive control
//    proving the fixture (and common/sync.hpp) is otherwise well-formed,
//    so the negative result below can only mean the analysis fired;
//  - with QOKIT_SEED_VIOLATION it MUST NOT compile: the seeded unguarded
//    access of a GUARDED_BY member has to be rejected. If it compiles,
//    the analysis has silently gone dark (attribute macros expanding to
//    nothing under clang, a dropped flag, a broken wrapper) and the
//    configure step fails loudly instead of shipping unproven locking.
#include "common/sync.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) QOKIT_EXCLUDES(mu_) {
    const qokit::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance() QOKIT_EXCLUDES(mu_) {
    const qokit::MutexLock lock(mu_);
    return balance_;
  }

#ifdef QOKIT_SEED_VIOLATION
  /// Unguarded write of a guarded member: -Wthread-safety must reject
  /// this translation unit.
  void corrupt(int amount) { balance_ += amount; }
#endif

 private:
  qokit::Mutex mu_;
  int balance_ QOKIT_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
#ifdef QOKIT_SEED_VIOLATION
  account.corrupt(1);
#endif
  return account.balance() == 0 ? 1 : 0;
}
